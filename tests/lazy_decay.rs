//! The committed EWMA-decay experiment: on non-stationary traffic
//! (`gens::phase_shift` — the hot-pair set rotates every P requests), a
//! lazy net whose demand ledger decays across epochs must beat the
//! no-decay baseline on **total cost** (routing + links changed).
//!
//! Why this holds: with half-life 0 every rebuild specializes the tree to
//! the demand of the epoch that just ended, so each phase shift leaves
//! the topology optimized for the *previous* hot set — high routing until
//! the threshold refires, then a near-total link churn toward the next
//! unrelated optimum. The EWMA ledger instead converges on the union of
//! the rotating sets: rebuild plans stay similar across epochs (small
//! link diffs) and every phase's hot pairs are already near the root.
//! This is exactly the thrashing regime *Toward Demand-Aware Networking*
//! flags for real, non-stationary datacenter workloads.
//!
//! Parameters mirror the tuning sweep in the PR that introduced decay;
//! the observed margin is ~30% (hl=8 vs hl=0), asserted here at ≥ 10% so
//! seed drift cannot flake the guard.

use ksan::core::lazy::{incremental_weight_balanced_rebuilder, weight_balanced_rebuilder};
use ksan::core::LazyKaryNet;
use ksan::prelude::*;
use ksan::sim::run;

const N: usize = 1024;
const M: usize = 60_000;
const PERIOD: usize = 500;
const SETS: usize = 5;
const PAIRS_PER_SET: usize = 4;
const P_HOT: f64 = 0.9;
const ALPHA: u64 = 4_000;

fn total_cost(m: &Metrics) -> u64 {
    m.routing + m.links_changed
}

#[test]
fn ewma_decay_beats_no_decay_on_phase_shift_total_cost() {
    let trace = gens::phase_shift(N, M, PERIOD, SETS, PAIRS_PER_SET, P_HOT, 33);
    let run_with = |half_life: u32| {
        let mut net =
            LazyKaryNet::new(2, N, ALPHA, weight_balanced_rebuilder(2)).with_half_life(half_life);
        let metrics = run(&mut net, &trace);
        (metrics, net.rebuilds())
    };
    let (no_decay, rebuilds_plain) = run_with(0);
    let (decay, rebuilds_decay) = run_with(8);
    assert!(
        rebuilds_plain >= 20 && rebuilds_decay >= 20,
        "vacuous run: {rebuilds_plain} / {rebuilds_decay} rebuilds"
    );
    let (plain, smoothed) = (total_cost(&no_decay), total_cost(&decay));
    // ≥ 10% total-cost win (measured ≈ 34%), and the win must come from
    // both channels: less post-shift routing *and* less rebuild churn.
    assert!(
        smoothed * 10 <= plain * 9,
        "EWMA decay must beat no-decay by ≥10% on total cost \
         (decay {smoothed} vs no-decay {plain})"
    );
    assert!(
        decay.routing < no_decay.routing,
        "decay routing {} vs no-decay {}",
        decay.routing,
        no_decay.routing
    );
    assert!(
        decay.links_changed < no_decay.links_changed,
        "decay links {} vs no-decay {}",
        decay.links_changed,
        no_decay.links_changed
    );
}

#[test]
fn incremental_plans_cut_patched_nodes_on_phase_shift() {
    // Same workload, incremental planner vs full rebuilds, both with
    // decay: the plans must actually be local (fewer nodes re-formed in
    // total) without giving the total cost back.
    let trace = gens::phase_shift(N, M, PERIOD, SETS, PAIRS_PER_SET, P_HOT, 33);
    let mut full = LazyKaryNet::new(2, N, ALPHA, weight_balanced_rebuilder(2)).with_half_life(8);
    let mf = run(&mut full, &trace);
    let mut incr = LazyKaryNet::new(2, N, ALPHA, incremental_weight_balanced_rebuilder(2, 32))
        .with_half_life(8);
    let mi = run(&mut incr, &trace);
    assert!(incr.rebuilds() >= 20, "vacuous run");
    assert!(
        mi.rebuild_patched_nodes < mf.rebuild_patched_nodes / 2,
        "incremental plans re-formed {} nodes vs {} for full rebuilds — not local",
        mi.rebuild_patched_nodes,
        mf.rebuild_patched_nodes
    );
    // Locality must not cost much total quality: allow ≤ 15% overhead vs
    // the full-rebuild policy on this workload (measured: comparable).
    assert!(
        total_cost(&mi) * 100 <= total_cost(&mf) * 115,
        "incremental total cost {} vs full {}",
        total_cost(&mi),
        total_cost(&mf)
    );
    // Telemetry plumbing: the metrics' patch counters must reflect the
    // per-serve ServeCost stream exactly (full = one patch of n per
    // rebuild).
    assert_eq!(mf.rebuild_patches, full.rebuilds());
    assert_eq!(mf.rebuild_patched_nodes, full.rebuilds() * N as u64);
    assert_eq!(mi.rebuild_patches, incr.patches_applied());
    assert_eq!(mi.rebuild_patched_nodes, incr.nodes_patched());
}
