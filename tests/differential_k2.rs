//! Differential test: the generalized k-ary rotations of `kst-core` at
//! k = 2 must reproduce the classic binary SplayNet (zig / zig-zig /
//! zig-zag) **move for move** — identical tree shapes after every request
//! and identical routing costs.
//!
//! This is the strongest correctness evidence for the restructure window
//! policy: the paper presents k-splay/k-semi-splay as generalizations of
//! the binary splay rotations (Section 4.1), so the k = 2 instance must
//! degenerate exactly.

use kst_core::{KSplayNet, Network, NodeKey, NIL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use splaynet_classic::ClassicSplayNet;

/// Asserts both networks have identical shapes (same parent and same
/// left/right orientation per key).
fn assert_same_shape(kst: &KSplayNet, classic: &ClassicSplayNet, ctx: &str) {
    let t = kst.tree();
    let n = t.n();
    for v in 0..n as u32 {
        let kp = t.parent(v);
        let cp = classic.parent_of(v);
        assert_eq!(
            kp,
            cp,
            "{ctx}: key {} parent differs (kst {:?} vs classic {:?})",
            v + 1,
            kp.checked_add(1),
            cp.checked_add(1)
        );
        let kids = t.children(v);
        assert_eq!(
            kids[0],
            classic.left_of(v),
            "{ctx}: key {} left child differs",
            v + 1
        );
        assert_eq!(
            kids[1],
            classic.right_of(v),
            "{ctx}: key {} right child differs",
            v + 1
        );
    }
    assert_eq!(t.root(), classic.root(), "{ctx}: roots differ");
}

#[test]
fn initial_balanced_shapes_match() {
    for n in [1usize, 2, 3, 4, 7, 10, 33, 100, 255] {
        let kst = KSplayNet::balanced(2, n);
        let classic = ClassicSplayNet::balanced(n);
        assert_same_shape(&kst, &classic, &format!("initial n={n}"));
    }
}

#[test]
fn random_traces_move_for_move() {
    for (n, m, seed) in [
        (10usize, 400usize, 1u64),
        (64, 1000, 2),
        (100, 1500, 3),
        (255, 800, 4),
    ] {
        let mut kst = KSplayNet::balanced(2, n);
        let mut classic = ClassicSplayNet::balanced(n);
        let mut rng = StdRng::seed_from_u64(seed);
        for step in 0..m {
            let u = rng.gen_range(1..=n as NodeKey);
            let v = rng.gen_range(1..=n as NodeKey);
            if u == v {
                continue;
            }
            let ck = kst.serve(u, v);
            let cc = classic.serve(u, v);
            assert_eq!(
                ck.routing, cc.routing,
                "n={n} seed={seed} step={step}: routing cost differs for ({u},{v})"
            );
            assert_eq!(
                ck.rotations, cc.rotations,
                "n={n} seed={seed} step={step}: rotation count differs for ({u},{v})"
            );
            // links_changed is intentionally NOT compared: classic SplayNet
            // applies two sequential elementary rotations per double step
            // (intermediate link changes count), whereas a k-splay batches
            // the same net transformation into one reconfiguration, so its
            // link-change count is ≤ the classic one.
            assert!(
                ck.links_changed <= cc.links_changed,
                "n={n} seed={seed} step={step}: batched k-splay changed more links"
            );
            assert_same_shape(
                &kst,
                &classic,
                &format!("n={n} seed={seed} step={step} req=({u},{v})"),
            );
        }
    }
}

#[test]
fn skewed_traces_move_for_move() {
    // Heavy repetition exercises the zig-heavy paths.
    let n = 60;
    let mut kst = KSplayNet::balanced(2, n);
    let mut classic = ClassicSplayNet::balanced(n);
    let mut rng = StdRng::seed_from_u64(77);
    let mut last = (1u32, 2u32);
    for step in 0..2000 {
        let (u, v) = if rng.gen::<f64>() < 0.7 {
            last
        } else {
            let u = rng.gen_range(1..=n as NodeKey);
            let v = rng.gen_range(1..=n as NodeKey);
            if u == v {
                continue;
            }
            (u, v)
        };
        last = (u, v);
        kst.serve(u, v);
        classic.serve(u, v);
        assert_same_shape(&kst, &classic, &format!("skewed step={step}"));
    }
}

#[test]
fn splay_to_root_matches() {
    // Direct splay-to-root comparison, exercising pure access sequences.
    let n = 127;
    let mut kst = KSplayNet::balanced(2, n);
    let mut classic = ClassicSplayNet::balanced(n);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..300 {
        let key = rng.gen_range(1..=n as NodeKey);
        // splay the same key to the root in both structures
        kst.tree_mut().splay_until(
            key - 1,
            NIL,
            kst_core::SplayStrategy::KSplay,
            kst_core::WindowPolicy::Paper,
        );
        classic.splay_until(key - 1, u32::MAX);
        assert_same_shape(&kst, &classic, &format!("splay-to-root key={key}"));
    }
}
