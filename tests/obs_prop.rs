//! Property tests for the kst-obs histogram: quantile estimates must
//! track the exact order statistics of the raw sample stream within the
//! documented bound (exact below 32, ≤ 1/32 relative error above), and
//! `Histogram::merge` must be a commutative monoid whose folds agree
//! with sequential recording — the algebra that lets per-shard
//! histogram partials reduce to the sequential run's distributions in
//! any grouping, exactly like `Metrics::merge` does for totals.

use ksan::obs::Histogram;
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut m = a.clone();
    m.merge(b);
    m
}

/// The full u64 range: small exact values and huge octave values alike.
fn arb_samples(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![0u64..64, 0u64..100_000, proptest::num::u64::ANY],
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_bound_the_sorted_vec_reference(
        samples in arb_samples(300),
        qs in proptest::collection::vec(0u32..=1000, 1..6),
    ) {
        // Quantiles as permille (the vendored proptest has no f64 ranges).
        let qs: Vec<f64> = qs.iter().map(|&q| f64::from(q) / 1000.0).collect();
        let h = hist_of(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            for &q in &qs {
                prop_assert_eq!(h.quantile(q), 0);
            }
            return Ok(());
        }
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        for &q in &qs {
            let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let reference = sorted[target - 1];
            let est = h.quantile(q);
            // Never below the true order statistic...
            prop_assert!(est >= reference, "q={q}: {est} < {reference}");
            // ...and within one bucket width above it (≤ 1/32 relative).
            prop_assert!(
                est <= reference.saturating_add(reference / 32).saturating_add(1),
                "q={q}: {est} too far above {reference}"
            );
            if reference < 32 {
                prop_assert_eq!(est, reference, "exact below 32, q={q}");
            }
        }
    }

    #[test]
    fn merge_is_commutative(a in arb_samples(120), b in arb_samples(120)) {
        let (a, b) = (hist_of(&a), hist_of(&b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        a in arb_samples(80),
        b in arb_samples(80),
        c in arb_samples(80),
    ) {
        let (a, b, c) = (hist_of(&a), hist_of(&b), hist_of(&c));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn new_is_the_identity(a in arb_samples(120)) {
        let a = hist_of(&a);
        prop_assert_eq!(merged(&a, &Histogram::new()), a.clone());
        prop_assert_eq!(merged(&Histogram::new(), &a), a);
    }

    #[test]
    fn any_split_merges_to_the_sequential_histogram(
        samples in arb_samples(200),
        cut in 0usize..=200,
    ) {
        let whole = hist_of(&samples);
        let cut = cut.min(samples.len());
        let (lo, hi) = samples.split_at(cut);
        // Split-and-merge in both orders reproduces sequential recording
        // bit for bit — the threaded ≡ sequential argument for histograms.
        prop_assert_eq!(merged(&hist_of(lo), &hist_of(hi)), whole.clone());
        prop_assert_eq!(merged(&hist_of(hi), &hist_of(lo)), whole);
    }
}
