//! Shared test-support helpers for the release-mode scale gates
//! (`scale_1m`, `scale_10m`, `scale_lazy_1m`, `scale_100m`): one
//! peak-RSS probe and one budget assertion, so every scale test holds to
//! its documented memory envelope through the same code path.

/// Peak resident set size (VmHWM) of the current process in KiB, if the
/// platform exposes it (Linux procfs).
pub fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Asserts the process peak RSS stays under `budget_kib` (Linux-only
/// probe), printing the observed high-water mark for CI logs. On
/// platforms without the probe the budget is logged as unchecked and the
/// test proceeds.
pub fn assert_rss_within_budget(budget_kib: u64) {
    match peak_rss_kib() {
        Some(kib) => {
            eprintln!("peak RSS: {kib} KiB (budget {budget_kib} KiB)");
            assert!(
                kib < budget_kib,
                "peak RSS {kib} KiB exceeds the documented {budget_kib} KiB budget"
            );
        }
        None => eprintln!("VmHWM unavailable on this platform; RSS budget not checked"),
    }
}
