//! The zero-allocation serve-path guarantee, enforced as a regular test:
//! with a counting global allocator installed, serving traces on every
//! network implementation must perform **zero** heap allocations — from the
//! very first request, since the constructors pre-size the scratch arenas
//! via `KstTree::reserve_scratch`.
//!
//! The allocation counter is per-thread (`alloc_probe`), so neither
//! sibling tests nor the libtest harness's own reporting thread can
//! pollute the counts — the latter used to fail this test
//! nondeterministically when the harness's progress output raced the
//! first counted window.

use ksan::core::alloc_probe::{self, CountingAlloc};
use ksan::core::lazy::LazyKaryNet;
use ksan::prelude::*;
use ksan::sim::ObsCollector;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn serve_all<N: Network>(net: &mut N, trace: &Trace) -> u64 {
    let mut acc = 0u64;
    for &(u, v) in trace.requests() {
        acc += net.serve(u, v).total_unit();
    }
    acc
}

#[test]
fn serve_paths_never_allocate() {
    let n = 300;
    let trace = gens::temporal(n, 2000, 0.6, 11);
    let zipf = gens::zipf(n, 2000, 1.2, 12);

    // k-ary SplayNet: every arity, both strategies, all window policies.
    for k in [2usize, 3, 5, 9] {
        for strategy in [SplayStrategy::KSplay, SplayStrategy::SemiOnly] {
            for policy in [
                WindowPolicy::Paper,
                WindowPolicy::Leftmost,
                WindowPolicy::Rightmost,
            ] {
                let mut net = KSplayNet::balanced(k, n)
                    .with_strategy(strategy)
                    .with_policy(policy);
                let ((), allocs) = alloc_probe::count_allocations(|| {
                    std::hint::black_box(serve_all(&mut net, &trace));
                });
                assert_eq!(
                    allocs, 0,
                    "KSplayNet allocated (k={k}, {strategy:?}, {policy:?})"
                );
            }
        }
    }

    // Deep(d) generalized strategies.
    for d in [4u8, 6] {
        let mut net = KSplayNet::balanced(3, n).with_strategy(SplayStrategy::Deep(d));
        let ((), allocs) = alloc_probe::count_allocations(|| {
            std::hint::black_box(serve_all(&mut net, &zipf));
        });
        assert_eq!(allocs, 0, "KSplayNet allocated (Deep({d}))");
    }

    // Centroid (k+1)-SplayNet.
    for k in [2usize, 4] {
        let mut net = KPlusOneSplayNet::new(k, n);
        let ((), allocs) = alloc_probe::count_allocations(|| {
            std::hint::black_box(serve_all(&mut net, &trace));
        });
        assert_eq!(allocs, 0, "KPlusOneSplayNet allocated (k={k})");
    }

    // Cloned networks inherit the scratch *capacity* (KstTree's manual
    // Clone), so a clone serves allocation-free from its first request too.
    {
        let original = KSplayNet::balanced(4, n);
        let mut net = original.clone();
        let ((), allocs) = alloc_probe::count_allocations(|| {
            std::hint::black_box(serve_all(&mut net, &trace));
        });
        assert_eq!(allocs, 0, "cloned KSplayNet allocated");
    }

    // Competing topologies: Push-Down Trees and rotor-walk trees keep the
    // complete position tree fixed and swap occupants; all link-diff
    // scratch is reserved at construction, so serving — including the
    // steady state after convergence — is allocation-free from request one.
    for k in [2usize, 3, 5, 9] {
        {
            let mut net = PushDownNet::new(k, n);
            let ((), allocs) = alloc_probe::count_allocations(|| {
                std::hint::black_box(serve_all(&mut net, &trace));
            });
            assert_eq!(allocs, 0, "PushDownNet allocated (k={k}, temporal)");
            let ((), allocs) = alloc_probe::count_allocations(|| {
                std::hint::black_box(serve_all(&mut net, &zipf));
            });
            assert_eq!(allocs, 0, "PushDownNet allocated (k={k}, zipf)");
        }
        {
            let mut net = RotorWalkNet::new(k, n);
            let ((), allocs) = alloc_probe::count_allocations(|| {
                std::hint::black_box(serve_all(&mut net, &trace));
            });
            assert_eq!(allocs, 0, "RotorWalkNet allocated (k={k}, temporal)");
            let ((), allocs) = alloc_probe::count_allocations(|| {
                std::hint::black_box(serve_all(&mut net, &zipf));
            });
            assert_eq!(allocs, 0, "RotorWalkNet allocated (k={k}, zipf)");
        }
    }

    // Classic binary SplayNet baseline.
    {
        let mut net = ClassicSplayNet::balanced(n);
        let ((), allocs) = alloc_probe::count_allocations(|| {
            std::hint::black_box(serve_all(&mut net, &trace));
        });
        assert_eq!(allocs, 0, "ClassicSplayNet allocated");
    }

    // Observability on the serve path: histogram recording and span
    // tracing pre-size everything at construction, so serving with a
    // collector attached stays allocation-free — including after the
    // ring wraps (capacity far below the request count) and across
    // rebuild events, which record three extra spans each.
    {
        let mut net = KSplayNet::balanced(3, n);
        let mut obs = ObsCollector::new(0, 64); // 64 ≪ 2000 requests: wraps
        let ((), allocs) = alloc_probe::count_allocations(|| {
            for &(u, v) in trace.requests() {
                let c = net.serve(u, v);
                obs.observe(u, v, c);
            }
        });
        assert_eq!(allocs, 0, "observed KSplayNet serve path allocated");
        assert_eq!(obs.requests(), 2000);
        assert!(obs.tracer.dropped() > 0, "ring must have wrapped");
    }
    {
        // Rebuild costs too: a lazy net's serve may allocate at rebuild
        // epochs (by design, documented below), so record its cost
        // stream first and replay *observation alone* under the counter
        // — the rebuild branch (extra histograms + three span events per
        // rebuild) must also be allocation-free.
        let mut net = LazyKaryNet::new(
            3,
            n,
            2_500,
            ksan::core::incremental_weight_balanced_rebuilder(3, 64),
        );
        let mut costs: Vec<(NodeKey, NodeKey, ServeCost)> =
            Vec::with_capacity(trace.requests().len());
        for &(u, v) in trace.requests() {
            costs.push((u, v, net.serve(u, v)));
        }
        assert!(
            costs.iter().any(|&(_, _, c)| c.rebuild_patches > 0),
            "trace must trigger patching rebuilds"
        );
        let mut obs = ObsCollector::new(0, 128);
        let ((), allocs) = alloc_probe::count_allocations(|| {
            for &(u, v, c) in &costs {
                obs.observe(u, v, c);
            }
        });
        assert_eq!(allocs, 0, "observing rebuild costs allocated");
        assert_eq!(obs.requests(), 2000);
        assert!(obs.rebuild_patches.count() > 0);
    }

    // The engine's demand-aware dispatch path: ShardMap routing, the
    // gateway half-serve decomposition and the self-adjusting router
    // spine allocate nothing outside migration boundaries — including
    // after a live migration has respliced the shard trees and dropped
    // the O(1) uniform lookup (epoch boundaries themselves are the
    // documented cold path and may allocate while planning).
    {
        let n = 200;
        let mut rc = ReshardConfig::on();
        rc.epoch = 500;
        rc.budget = 8;
        let cfg = EngineConfig::default()
            .with_shards(4)
            .with_threads(1)
            .with_spine(SpineMode::KSplay { k: 2 })
            .with_reshard(rc);
        let mut eng = ShardedEngine::ksplay(2, n, cfg);
        // Warm run: boundary-straddling traffic forces at least one
        // migration, so the counted window below exercises the
        // post-migration range table and the respliced shard trees.
        let warm = gens::boundary_phase_shift(n, 1000, 4, 500, 0.8, 7);
        let warm_rep = eng.run_trace(&warm);
        assert!(warm_rep.reshard.migrations > 0, "warmup must migrate");
        let steady = gens::uniform(n, 2000, 21);
        let mut report = EngineReport::new(4);
        let ((), allocs) = alloc_probe::count_allocations(|| {
            for &(u, v) in steady.requests() {
                std::hint::black_box(eng.serve_one(u, v, &mut report));
            }
        });
        assert_eq!(allocs, 0, "engine dispatch path allocated");
        assert!(
            report.cross.requests > 0,
            "steady traffic must cross shards"
        );
    }

    // Lazy nets are static between rebuilds. The sparse epoch ledger
    // allocates only when it grows for a *new* distinct pair (amortized
    // hash-map growth — the price of O(distinct pairs) memory instead of
    // a dense n² matrix); re-serving pairs already in the ledger is pure
    // lookups and must be allocation-free (rebuilds themselves may — and
    // do — allocate by design).
    {
        let mut net = LazyKaryNet::new(
            3,
            n,
            u64::MAX,
            ksan::core::FullRebuild(|d: &ksan::core::DemandView<'_>| {
                ShapeTree::balanced_kary(d.n(), 3)
            }),
        );
        // Warm pass: every distinct pair enters the ledger once.
        serve_all(&mut net, &trace);
        let pairs_after_warmup = net.epoch_demand().distinct_pairs();
        let ((), allocs) = alloc_probe::count_allocations(|| {
            std::hint::black_box(serve_all(&mut net, &trace));
        });
        assert_eq!(allocs, 0, "LazyKaryNet allocated on a warmed ledger");
        assert_eq!(
            net.epoch_demand().distinct_pairs(),
            pairs_after_warmup,
            "second pass over the same trace must add no distinct pairs"
        );
    }
}
