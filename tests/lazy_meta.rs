//! Integration tests for the lazy meta-algorithm wired to the offline
//! constructions.

use ksan::core::{LazyKaryNet, Network};
use ksan::prelude::*;
use ksan::sim::experiments::{centroid_rebuilder, optimal_rebuilder, weight_balanced_rebuilder};

#[test]
fn lazy_optimal_rebuild_improves_routing_on_skewed_traffic() {
    let n = 80;
    let k = 3;
    let trace = gens::zipf(n, 30_000, 1.4, 7);
    // Never rebuild: cost of the initial balanced tree.
    let mut frozen = LazyKaryNet::new(k, n, u64::MAX, optimal_rebuilder(k));
    let mf = ksan::sim::run(&mut frozen, &trace);
    assert_eq!(frozen.rebuilds(), 0);
    // Rebuild a handful of times.
    let mut lazy = LazyKaryNet::new(k, n, 20_000, optimal_rebuilder(k));
    let ml = ksan::sim::run(&mut lazy, &trace);
    assert!(lazy.rebuilds() >= 1, "threshold must have fired");
    assert!(
        ml.routing < mf.routing,
        "demand-aware rebuilds must cut routing cost ({} vs {})",
        ml.routing,
        mf.routing
    );
    ksan::core::invariants::validate(lazy.tree()).unwrap();
}

#[test]
fn lazy_weight_balanced_rebuild_improves_routing_beyond_dp_reach() {
    // n = 5000 is far past any O(n³k) DP budget; the weight-balanced
    // policy is what makes demand-aware lazy rebuilds viable there.
    let n = 5000;
    let k = 3;
    let trace = gens::zipf(n, 40_000, 1.3, 13);
    let mut frozen = LazyKaryNet::new(k, n, u64::MAX, weight_balanced_rebuilder(k));
    let mf = ksan::sim::run(&mut frozen, &trace);
    assert_eq!(frozen.rebuilds(), 0);
    let mut lazy = LazyKaryNet::new(k, n, 60_000, weight_balanced_rebuilder(k));
    let ml = ksan::sim::run(&mut lazy, &trace);
    assert!(lazy.rebuilds() >= 1, "threshold must have fired");
    assert!(
        ml.routing < mf.routing,
        "weight-balanced rebuilds must cut routing cost ({} vs {})",
        ml.routing,
        mf.routing
    );
    ksan::core::invariants::validate(lazy.tree()).unwrap();
}

#[test]
fn lazy_centroid_rebuild_keeps_invariants() {
    let n = 64;
    let trace = gens::temporal(n, 5_000, 0.6, 9);
    let mut lazy = LazyKaryNet::new(4, n, 3_000, centroid_rebuilder(4));
    ksan::sim::run(&mut lazy, &trace);
    assert!(lazy.rebuilds() >= 1);
    ksan::core::invariants::validate(lazy.tree()).unwrap();
}

#[test]
fn lazy_net_distance_consistent_after_rebuilds() {
    let n = 50;
    let trace = gens::projector(n, 10_000, 11);
    let mut lazy = LazyKaryNet::new(2, n, 5_000, optimal_rebuilder(2));
    ksan::sim::run(&mut lazy, &trace);
    for u in 1..=n as u32 {
        assert_eq!(lazy.distance(u, u), 0);
        let v = (u % n as u32) + 1;
        if u != v {
            assert!(lazy.distance(u, v) >= 1);
            assert_eq!(lazy.distance(u, v), lazy.distance(v, u));
        }
    }
}
