//! Theorem 13 (empirical): k-ary SplayNet's total cost is bounded by a
//! constant times the source/destination entropy sum
//! `Σ_x a_x log(m/a_x) + b_x log(m/b_x)`.

use ksan::prelude::*;
use ksan::workloads::entropy_bound_rhs;

#[test]
fn total_cost_within_constant_of_entropy_bound() {
    let m = 30_000;
    let traces = vec![
        ("zipf", gens::zipf(256, m, 1.2, 1)),
        ("temporal-0.5", gens::temporal(256, m, 0.5, 2)),
        ("uniform", gens::uniform(256, m, 3)),
        ("projector", gens::projector(256, m, 4)),
    ];
    for (name, trace) in traces {
        let bound = entropy_bound_rhs(&trace);
        assert!(bound > 0.0);
        for k in [2usize, 3, 5, 10] {
            let mut net = KSplayNet::balanced(k, trace.n());
            let metrics = ksan::sim::run(&mut net, &trace);
            let cost = metrics.total_unit_cost() as f64;
            let ratio = cost / bound;
            assert!(
                ratio < 6.0,
                "{name} k={k}: cost/bound ratio {ratio:.2} suspiciously large \
                 (cost {cost}, bound {bound:.0})"
            );
        }
    }
}

#[test]
fn skewed_traffic_costs_less_than_uniform() {
    // Entropy ordering must be reflected in realized costs: lower-entropy
    // traffic is cheaper for a self-adjusting network.
    let m = 30_000;
    let n = 256;
    let uni = gens::uniform(n, m, 7);
    let skew = gens::zipf(n, m, 1.5, 7);
    let cost = |trace: &ksan::workloads::Trace| {
        let mut net = KSplayNet::balanced(3, n);
        ksan::sim::run(&mut net, trace).total_unit_cost()
    };
    let cu = cost(&uni);
    let cs = cost(&skew);
    assert!(
        cs < cu,
        "zipf traffic ({cs}) should cost less than uniform ({cu})"
    );
}
