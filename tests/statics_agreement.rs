//! Cross-crate agreement between the offline algorithms — Remark 10's
//! centroid-optimality claim, the DP hierarchy, and Lemma 9's scaling.

use ksan::prelude::*;
use ksan::statics::{optimal_bst_exact, optimal_uniform_tree};
use ksan::workloads::DemandMatrix;

#[test]
fn remark10_centroid_is_optimal_on_uniform_up_to_moderate_n() {
    // The paper observed optimality for all n < 10³, k ≤ 10; testing a
    // dense grid of moderate sizes here (the full sweep is the `remark10`
    // bench binary).
    for k in 2..=10usize {
        for n in [2usize, 3, 5, 8, 13, 21, 34, 55, 89, 144] {
            let centroid = centroid_tree(n, k).total_distance_uniform();
            let (_, opt) = optimal_uniform_tree(n, k);
            assert_eq!(
                centroid, opt,
                "n={n} k={k}: centroid {centroid} != optimal {opt}"
            );
        }
    }
}

#[test]
fn optimal_hierarchy_on_skewed_demand() {
    // optimal ≤ centroid and optimal ≤ full tree, for the demand they are
    // asked to optimize.
    let n = 60;
    let trace = gens::zipf(n, 4000, 1.2, 3);
    let demand = DemandMatrix::from_trace(&trace);
    for k in [2usize, 3, 5] {
        let (opt_tree, opt_cost) = optimal_routing_based_tree(&demand, k);
        assert_eq!(opt_tree.total_distance(&demand), opt_cost);
        let cen = centroid_tree(n, k).total_distance(&demand);
        let full = full_kary(n, k).total_distance(&demand);
        assert!(
            opt_cost <= cen,
            "k={k}: optimal {opt_cost} > centroid {cen}"
        );
        assert!(opt_cost <= full, "k={k}: optimal {opt_cost} > full {full}");
    }
}

#[test]
fn bst_exact_equals_general_dp_at_k2() {
    let trace = gens::projector(40, 3000, 8);
    let demand = DemandMatrix::from_trace(&trace);
    let (_, a) = optimal_bst_exact(&demand);
    let (_, b) = optimal_routing_based_tree(&demand, 2);
    assert_eq!(a, b);
}

#[test]
fn lemma9_centroid_never_worse_than_full_tree() {
    for k in [2usize, 3, 4, 7, 10] {
        for n in [10usize, 100, 1000, 5000] {
            let c = centroid_tree(n, k).total_distance_uniform();
            let f = full_kary(n, k).total_distance_uniform();
            assert!(c <= f, "n={n} k={k}: centroid {c} > full {f}");
            // Lemma 9: both are n² log_k n + O(n²); allow a generous band.
            if n >= 100 {
                let lead = (n as f64).powi(2) * (n as f64).ln() / (k as f64).ln();
                for (label, v) in [("full", f), ("centroid", c)] {
                    let ratio = v as f64 / lead;
                    assert!(
                        (0.3..1.8).contains(&ratio),
                        "{label} n={n} k={k}: ratio {ratio}"
                    );
                }
            }
        }
    }
}

#[test]
fn dp_uniform_matches_general_dp_when_restricted() {
    // On uniform demand the shape DP must be ≤ the routing-based DP, and
    // both must be realized by their trees.
    for k in 2..=4usize {
        for n in [10usize, 20, 35] {
            let d = DemandMatrix::uniform(n);
            let (shape_tree, shape_cost) = optimal_uniform_tree(n, k);
            let (rb_tree, rb_cost) = optimal_routing_based_tree(&d, k);
            assert_eq!(shape_tree.total_distance_uniform(), shape_cost);
            assert_eq!(rb_tree.total_distance(&d), rb_cost);
            assert!(shape_cost <= rb_cost, "n={n} k={k}");
        }
    }
}
