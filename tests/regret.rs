//! Regret sanity gates: every self-adjusting net against the offline
//! static optimum (`kst_statics::static_reference` + `kst_sim::regret`).
//!
//! Two properties are pinned:
//!
//! 1. on **stationary** zipf traffic the per-window online/static ratio is
//!    bounded and settles — after the first (convergence) window no window
//!    may be more than a small tolerance worse than its predecessor, and
//!    the last window must not exceed the first. Convergence completes
//!    well inside the first window, so the tolerances are tight but not
//!    zero (window-to-window noise is real);
//! 2. the DP reference the regret layer prices against is the true
//!    optimum: brute-force enumeration over all routing-based k-ary trees
//!    on n ≤ 8 must agree with `static_reference`'s tree exactly.

use ksan::prelude::*;
use ksan::sim::regret::regret_eval_against;
use ksan::statics::brute::brute_optimal_routing_based;

/// Runs one net's regret report on a shared reference and asserts the
/// stationary-traffic sanity properties.
fn assert_settling(r: &RegretReport) {
    let ctx = &r.net;
    assert!(r.exact, "{ctx}: reference must be the DP optimum");
    assert!(r.windows.len() >= 4, "{ctx}: need several windows");
    let first = r.window_ratio(0);
    let last = r.window_ratio(r.windows.len() - 1);
    assert!(first.is_finite() && first > 0.0, "{ctx}");
    // Bounded: no self-adjusting net in this workspace pays more than a
    // small constant factor over the clairvoyant static tree on
    // stationary zipf (the SplayNet sits around 3–4×, the complete-tree
    // competitors below 2×).
    assert!(
        r.cumulative_ratio() < 8.0,
        "{ctx}: cumulative ratio {:.3} not bounded",
        r.cumulative_ratio()
    );
    // Settling (sublinear regret per window): once converged, the ratio
    // must not trend upward. 15% window-to-window tolerance absorbs the
    // stochastic per-window mix; the endpoints get a tighter 10%.
    for i in 1..r.windows.len() {
        assert!(
            r.window_ratio(i) <= r.window_ratio(i - 1) * 1.15,
            "{ctx}: window {} ratio {:.3} jumped over window {} ratio {:.3}",
            i,
            r.window_ratio(i),
            i - 1,
            r.window_ratio(i - 1)
        );
    }
    assert!(
        last <= first * 1.10,
        "{ctx}: last window {last:.3} worse than first {first:.3} — \
         regret is growing, not settling"
    );
}

#[test]
fn stationary_zipf_ratios_are_bounded_and_settle_for_every_net() {
    let (n, k) = (96usize, 3usize);
    let trace = gens::zipf(n, 12_000, 1.2, 19);
    let demand = DemandMatrix::from_trace(&trace);
    let reference = static_reference(&demand, k, 128);
    let window = 1_500;

    let mut splay = KSplayNet::balanced(k, n);
    assert_settling(&regret_eval_against(&mut splay, &trace, &reference, window));
    let mut centroid = KPlusOneSplayNet::new(k, n);
    assert_settling(&regret_eval_against(
        &mut centroid,
        &trace,
        &reference,
        window,
    ));
    let mut pushdown = PushDownNet::new(k, n);
    assert_settling(&regret_eval_against(
        &mut pushdown,
        &trace,
        &reference,
        window,
    ));
    let mut rotor = RotorWalkNet::new(k, n);
    assert_settling(&regret_eval_against(&mut rotor, &trace, &reference, window));
}

#[test]
fn complete_tree_competitors_beat_the_splaynet_on_stationary_zipf() {
    // The horse race the topologies were added for: with a guaranteed
    // O(log n) shape, the push-down disciplines cannot be dragged into
    // the SplayNet's deep-path regime by a heavy-tailed stationary
    // demand. Pin the ordering so a regression in either discipline
    // (e.g. a broken anti-thrash guard) shows up as a ratio inversion.
    let (n, k) = (200usize, 3usize);
    let trace = gens::zipf(n, 20_000, 1.2, 7);
    let demand = DemandMatrix::from_trace(&trace);
    let reference = static_reference(&demand, k, 256);
    assert!(reference.exact);
    let window = 5_000;
    let mut splay = KSplayNet::balanced(k, n);
    let rs = regret_eval_against(&mut splay, &trace, &reference, window);
    let mut pushdown = PushDownNet::new(k, n);
    let rp = regret_eval_against(&mut pushdown, &trace, &reference, window);
    let mut rotor = RotorWalkNet::new(k, n);
    let rr = regret_eval_against(&mut rotor, &trace, &reference, window);
    assert!(
        rp.cumulative_ratio() < rs.cumulative_ratio(),
        "push-down {:.3} should beat splay {:.3} here",
        rp.cumulative_ratio(),
        rs.cumulative_ratio()
    );
    assert!(
        rr.cumulative_ratio() < rs.cumulative_ratio(),
        "rotor {:.3} should beat splay {:.3} here",
        rr.cumulative_ratio(),
        rs.cumulative_ratio()
    );
}

#[test]
fn regret_reference_matches_brute_force_on_tiny_instances() {
    // The regret layer's static side is only meaningful if the DP tree it
    // prices against really is the optimum; cross-check against full
    // enumeration of every routing-based k-ary tree.
    for (n, k, seed) in [(6usize, 2usize, 1u64), (7, 3, 2), (8, 2, 3), (8, 4, 4)] {
        let trace = gens::zipf(n, 300, 1.1, seed);
        let demand = DemandMatrix::from_trace(&trace);
        let reference = static_reference(&demand, k, 64);
        assert!(reference.exact);
        let brute = brute_optimal_routing_based(&demand, k);
        assert_eq!(
            reference.tree.cost_on_trace(&trace),
            brute,
            "n={n} k={k} seed={seed}: DP reference is not the brute optimum"
        );
        // And the regret bookkeeping prices the static side with exactly
        // that optimal cost.
        let mut net = PushDownNet::new(k, n);
        let r = regret_eval_against(&mut net, &trace, &reference, 75);
        assert_eq!(r.static_total, brute, "n={n} k={k} seed={seed}");
        assert_eq!(
            r.cumulative_regret(),
            r.online_total as i64 - brute as i64,
            "n={n} k={k} seed={seed}: regret must be signed against the optimum"
        );
    }
}
