//! Release-mode scale test: a 10⁶-node online k-ary SplayNet driven through
//! a skewed trace (ROADMAP: "push the online nets to 10⁶ nodes with memory
//! profiling").
//!
//! `#[ignore]`-gated because a million-node network is pointless to exercise
//! under the debug profile; CI runs it in the release job with
//! `cargo test --release -- --ignored`.
//!
//! ## Memory budget
//!
//! The documented peak-RSS budget is **512 MiB**. Breakdown for k = 4,
//! n = 10⁶: the arena tree itself is ~64 MB (parents 4 MB, elements 24 MB,
//! child slots 16 MB, bounds 16 MB, depth cache 4 MB — released at the
//! first splay); `from_shape` construction transients
//! (shape children lists, key ranges, traversal order) peak at roughly
//! another ~100 MB and are freed before serving; the trace and test harness
//! add a few MB. The budget leaves ~3× headroom over the expected ~170 MB
//! peak while still catching any per-node `Vec` regression or quadratic
//! blow-up (per-node heap boxing at this scale costs hundreds of MB
//! immediately).

// Demo/report output is this target's purpose; the workspace denies stdout printing in library code only.
#![allow(clippy::print_stdout)]

use ksan::prelude::*;

mod common;
use common::assert_rss_within_budget;

const N: usize = 1_000_000;
const REQUESTS: usize = 200_000;
const WINDOW: usize = 20_000;
const RSS_BUDGET_KIB: u64 = 512 * 1024;

/// Skewed trace: a dominant far-apart hot pair with a pseudo-random cold
/// request mixed in every 16th slot (deterministic, no RNG state needed).
fn skewed_trace(n: usize, m: usize) -> Trace {
    let (hu, hv) = (1u32, n as u32);
    let mut reqs = Vec::with_capacity(m);
    let mut x = 0u64;
    for i in 0..m {
        if i % 16 == 0 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let w = ((x >> 33) % (n as u64 - 2) + 2) as u32;
            reqs.push((hu, w));
        } else {
            reqs.push((hu, hv));
        }
    }
    Trace::new(n, reqs)
}

#[test]
#[ignore = "release-only scale test: run with cargo test --release -- --ignored"]
fn million_node_hot_pair_stays_flat_and_within_memory_budget() {
    let mut net = KSplayNet::balanced(4, N);
    let trace = skewed_trace(N, REQUESTS);
    let (total, windows) = ksan::sim::run_windowed(&mut net, &trace, WINDOW);

    assert_eq!(total.requests, REQUESTS as u64);
    assert_eq!(windows.len(), REQUESTS / WINDOW);

    // Serve cost per request must be flat across windows — the hot pair
    // converges within the first few requests, and each cold request pays
    // its O(log n) splay exactly once, so no window may drift away from the
    // steady state (a super-constant trend here would mean the adjustment
    // discipline degrades the topology over time).
    let costs: Vec<f64> = windows.iter().map(|w| w.avg_total_unit_cost()).collect();
    let (lo, hi) = costs
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &c| (lo.min(c), hi.max(c)));
    assert!(
        hi <= 1.25 * lo + 0.5,
        "steady-state per-request cost must be flat across windows \
         (min {lo:.3}, max {hi:.3})"
    );
    // Steady state is dominated by adjacent hot-pair serves at unit cost.
    assert!(
        hi < 8.0,
        "steady-state per-request cost unexpectedly high: {hi:.3}"
    );

    // Memory: peak RSS within the documented budget (Linux-only probe).
    assert_rss_within_budget(RSS_BUDGET_KIB);
}

#[test]
#[ignore = "release-only scale test: run with cargo test --release -- --ignored"]
fn million_node_competitors_stay_flat_and_within_memory_budget() {
    // The complete-tree competitors at the same scale. Their footprint is
    // far smaller than the SplayNet's (four u32 arrays plus bounded
    // link-diff scratch — ~20 MB at n = 10⁶), so the shared process-wide
    // 512 MiB budget leaves even more headroom; the interesting failure
    // mode here is cost drift, e.g. rotor displacement slowly pushing the
    // hot pair apart.
    let trace = skewed_trace(N, REQUESTS);
    let run = |label: &str, windows: Vec<ksan::sim::Metrics>, total: ksan::sim::Metrics| {
        assert_eq!(total.requests, REQUESTS as u64, "{label}");
        let costs: Vec<f64> = windows.iter().map(|w| w.avg_total_unit_cost()).collect();
        let (lo, hi) = costs
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(
            hi <= 1.25 * lo + 0.5,
            "{label}: steady-state per-request cost must be flat across \
             windows (min {lo:.3}, max {hi:.3})"
        );
        assert!(
            hi < 8.0,
            "{label}: steady-state per-request cost unexpectedly high: {hi:.3}"
        );
    };

    let mut pushdown = PushDownNet::new(4, N);
    let (total, windows) = ksan::sim::run_windowed(&mut pushdown, &trace, WINDOW);
    run("PushDownNet", windows, total);

    let mut rotor = RotorWalkNet::new(4, N);
    let (total, windows) = ksan::sim::run_windowed(&mut rotor, &trace, WINDOW);
    run("RotorWalkNet", windows, total);

    assert_rss_within_budget(RSS_BUDGET_KIB);
}
