//! Oracle-backed differential harness for the competing complete-tree
//! topologies, mirroring `tests/differential_oracle.rs`.
//!
//! [`RefCompleteNet`] is a deliberately naive, allocation-happy reference
//! implementation of the Push-Down Tree and Rotor-Walk Tree disciplines:
//! depths recomputed by integer division on every query, distances walked
//! ancestor list by ancestor list, link accounting done by diffing
//! *global* key-space edge sets before and after every request. It
//! transcribes the adjustment rules (promote each endpoint one level
//! unless it is at the root or its parent holds the other endpoint; the
//! rotor variant additionally pushes the displaced occupant into the
//! rotor-chosen child) directly from the module docs, independently of the
//! scratch-arena implementation in `kst-core`.
//!
//! Every workload generator in the catalog is fuzzed at n ∈ {16, 64, 257}
//! and the nets must agree **move for move**: identical routing costs,
//! rotation counts, link-change counts, and occupant permutations after
//! every request.

use kst_core::{Network, NodeKey, PushDownNet, RotorWalkNet};
use kst_workloads::{gens, Trace};

/// Which adjustment discipline the reference runs.
#[derive(Clone, Copy, PartialEq)]
enum Discipline {
    PushDown,
    Rotor,
}

/// Naive reference: a complete k-ary position tree with occupants
/// permuted by the guarded one-level promotions.
struct RefCompleteNet {
    k: usize,
    n: usize,
    /// position -> node index
    item: Vec<u32>,
    /// node index -> position
    pos: Vec<u32>,
    /// per-position rotor slots (used by the rotor discipline only)
    rotor: Vec<u32>,
    discipline: Discipline,
}

impl RefCompleteNet {
    fn new(k: usize, n: usize, discipline: Discipline) -> RefCompleteNet {
        RefCompleteNet {
            k,
            n,
            item: (0..n as u32).collect(),
            pos: (0..n as u32).collect(),
            rotor: vec![0; n],
            discipline,
        }
    }

    fn parent(&self, p: u32) -> u32 {
        (p - 1) / self.k as u32
    }

    /// Ancestor positions of `p`, root last (naive re-walk every call).
    fn ancestors(&self, mut p: u32) -> Vec<u32> {
        let mut a = vec![p];
        while p != 0 {
            p = self.parent(p);
            a.push(p);
        }
        a
    }

    fn distance(&self, i: u32, j: u32) -> u64 {
        if i == j {
            return 0;
        }
        let ai = self.ancestors(self.pos[i as usize]);
        let aj = self.ancestors(self.pos[j as usize]);
        let w = *ai
            .iter()
            .find(|x| aj.contains(x))
            .expect("complete tree is connected");
        let di = ai.iter().position(|&x| x == w).unwrap();
        let dj = aj.iter().position(|&x| x == w).unwrap();
        (di + dj) as u64
    }

    /// Global undirected key-space edge set, sorted (recomputed in full for
    /// every link-accounting query — the naivety is the point).
    fn edge_set(&self) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for p in 1..self.n as u32 {
            let a = self.item[p as usize] + 1;
            let b = self.item[self.parent(p) as usize] + 1;
            edges.push((a.min(b), a.max(b)));
        }
        edges.sort_unstable();
        edges
    }

    fn child_count(&self, p: u32) -> u32 {
        let first = p as u64 * self.k as u64 + 1;
        let n = self.n as u64;
        if first >= n {
            0
        } else {
            (n - first).min(self.k as u64) as u32
        }
    }

    fn swap(&mut self, p: u32, q: u32) {
        self.item.swap(p as usize, q as usize);
        self.pos[self.item[p as usize] as usize] = p;
        self.pos[self.item[q as usize] as usize] = q;
    }

    /// One guarded promotion of node index `x`; returns rotations.
    fn promote(&mut self, x: u32, other: u32) -> u64 {
        let p = self.pos[x as usize];
        if p == 0 {
            return 0;
        }
        let q = self.parent(p);
        if self.item[q as usize] == other {
            return 0;
        }
        match self.discipline {
            Discipline::PushDown => {
                self.swap(p, q);
                1
            }
            Discipline::Rotor => {
                let count = self.child_count(q);
                let slot = self.rotor[q as usize] % count;
                self.rotor[q as usize] = (slot + 1) % count;
                let c = (q as u64 * self.k as u64 + 1 + slot as u64) as u32;
                if c == p {
                    self.swap(p, q);
                    1
                } else {
                    let displaced = self.item[q as usize];
                    let evicted = self.item[c as usize];
                    self.item[q as usize] = x;
                    self.item[c as usize] = displaced;
                    self.item[p as usize] = evicted;
                    self.pos[x as usize] = q;
                    self.pos[displaced as usize] = c;
                    self.pos[evicted as usize] = p;
                    2
                }
            }
        }
    }

    /// Serves one request, returning (routing, rotations, links changed).
    fn serve(&mut self, u: NodeKey, v: NodeKey) -> (u64, u64, u64) {
        let ui = u - 1;
        let vi = v - 1;
        if ui == vi {
            return (0, 0, 0);
        }
        let routing = self.distance(ui, vi);
        let before = self.edge_set();
        let mut rotations = 0;
        rotations += self.promote(ui, vi);
        rotations += self.promote(vi, ui);
        let after = self.edge_set();
        let links = before.iter().filter(|e| !after.contains(e)).count()
            + after.iter().filter(|e| !before.contains(e)).count();
        (routing, rotations, links as u64)
    }
}

/// Asserts production net and oracle hold identical occupant permutations.
fn assert_same_positions(positions: impl Fn(NodeKey) -> u32, oracle: &RefCompleteNet, ctx: &str) {
    for i in 0..oracle.n as u32 {
        assert_eq!(
            positions(i + 1),
            oracle.pos[i as usize],
            "{ctx}: key {} position differs",
            i + 1
        );
    }
}

/// Every generator in the workload catalog at a given n.
fn catalog(n: usize, m: usize, seed: u64) -> Vec<(&'static str, Trace)> {
    vec![
        ("uniform", gens::uniform(n, m, seed)),
        ("temporal", gens::temporal(n, m, 0.6, seed ^ 1)),
        ("zipf", gens::zipf(n, m, 1.2, seed ^ 2)),
        ("hpc", gens::hpc(n, m, seed ^ 3)),
        ("projector", gens::projector(n, m, seed ^ 4)),
        ("facebook", gens::facebook(n, m, seed ^ 5)),
        (
            "sharded_hot_pairs",
            gens::sharded_hot_pairs(n, m, 4, 5, seed ^ 6),
        ),
        (
            "phase_shift",
            gens::phase_shift(n, m, 40, 2, 2, 0.8, seed ^ 7),
        ),
        (
            "drifting_zipf",
            gens::drifting_zipf(n, m, 1.1, 60, 2, seed ^ 8),
        ),
    ]
}

fn fuzz_pushdown(k: usize, n: usize, trace: &Trace, label: &str) {
    let mut net = PushDownNet::new(k, n);
    let mut oracle = RefCompleteNet::new(k, n, Discipline::PushDown);
    for (step, &(u, v)) in trace.requests().iter().enumerate() {
        let c = net.serve(u, v);
        let (routing, rotations, links) = oracle.serve(u, v);
        let ctx = format!("pushdown k={k} n={n} {label} step={step} req=({u},{v})");
        assert_eq!(c.routing, routing, "{ctx}: routing differs");
        assert_eq!(c.rotations, rotations, "{ctx}: rotations differ");
        assert_eq!(c.links_changed, links, "{ctx}: links_changed differs");
        assert_same_positions(|key| net.position_of(key), &oracle, &ctx);
    }
    net.validate().unwrap();
}

fn fuzz_rotor(k: usize, n: usize, trace: &Trace, label: &str) {
    let mut net = RotorWalkNet::new(k, n);
    let mut oracle = RefCompleteNet::new(k, n, Discipline::Rotor);
    for (step, &(u, v)) in trace.requests().iter().enumerate() {
        let c = net.serve(u, v);
        let (routing, rotations, links) = oracle.serve(u, v);
        let ctx = format!("rotor k={k} n={n} {label} step={step} req=({u},{v})");
        assert_eq!(c.routing, routing, "{ctx}: routing differs");
        assert_eq!(c.rotations, rotations, "{ctx}: rotations differ");
        assert_eq!(c.links_changed, links, "{ctx}: links_changed differs");
        assert_same_positions(|key| net.position_of(key), &oracle, &ctx);
        for p in 0..n as u32 {
            if oracle.child_count(p) > 0 {
                assert_eq!(
                    net.rotor_slot(p),
                    oracle.rotor[p as usize] % oracle.child_count(p),
                    "{ctx}: rotor at {p} differs"
                );
            }
        }
    }
    net.validate().unwrap();
}

#[test]
fn pushdown_matches_oracle_across_catalog() {
    for (ni, &n) in [16usize, 64, 257].iter().enumerate() {
        // bound the O(n²)-per-request oracle edge diffs at the largest n
        let m = if n > 100 { 250 } else { 400 };
        for (gi, (label, trace)) in catalog(n, m, 4000 + ni as u64).into_iter().enumerate() {
            let k = [2usize, 3, 4][gi % 3];
            fuzz_pushdown(k, n, &trace, label);
        }
    }
}

#[test]
fn rotor_matches_oracle_across_catalog() {
    for (ni, &n) in [16usize, 64, 257].iter().enumerate() {
        let m = if n > 100 { 250 } else { 400 };
        for (gi, (label, trace)) in catalog(n, m, 5000 + ni as u64).into_iter().enumerate() {
            let k = [2usize, 3, 4][(gi + 1) % 3];
            fuzz_rotor(k, n, &trace, label);
        }
    }
}

#[test]
fn pushdown_matches_oracle_on_hot_pair_convergence() {
    // Heavy repetition drives both implementations into the converged
    // regime where stale scratch state would hide; they must still agree.
    for &k in &[2usize, 3, 5] {
        let n = 64;
        let mut reqs = Vec::new();
        for i in 0..500u32 {
            if i % 5 == 4 {
                reqs.push((i % 63 + 1, 64));
            } else {
                reqs.push((7, 58));
            }
        }
        let reqs: Vec<(NodeKey, NodeKey)> = reqs.into_iter().filter(|&(u, v)| u != v).collect();
        let trace = Trace::new(n, reqs);
        fuzz_pushdown(k, n, &trace, "hot-pair");
        fuzz_rotor(k, n, &trace, "hot-pair");
    }
}
