//! Property tests for the metrics algebra behind sharded serving:
//! `Metrics::merge` must be a commutative monoid (associative,
//! commutative, `Metrics::default()` identity), and folding per-request
//! singletons through `merge` must equal the sequential `absorb` fold —
//! that algebra is what lets per-shard partials reduce to unsharded
//! totals in any grouping.

use ksan::prelude::*;
use proptest::prelude::*;

type Fields = (u64, u64, u64, u64, u64, u64);

fn metrics(
    (requests, routing, rotations, links_changed, rebuild_patches, rebuild_patched_nodes): Fields,
) -> Metrics {
    Metrics {
        requests,
        routing,
        rotations,
        links_changed,
        rebuild_patches,
        rebuild_patched_nodes,
    }
}

fn merged(a: &Metrics, b: &Metrics) -> Metrics {
    let mut m = *a;
    m.merge(b);
    m
}

/// Field values capped so chains of merges can never overflow u64.
fn arb_fields() -> impl Strategy<Value = Fields> {
    let f = 0u64..1 << 40;
    (f.clone(), f.clone(), f.clone(), f.clone(), f.clone(), f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_commutative(a in arb_fields(), b in arb_fields()) {
        let (a, b) = (metrics(a), metrics(b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(a in arb_fields(), b in arb_fields(), c in arb_fields()) {
        let (a, b, c) = (metrics(a), metrics(b), metrics(c));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    #[test]
    fn default_is_the_identity(a in arb_fields()) {
        let a = metrics(a);
        prop_assert_eq!(merged(&a, &Metrics::default()), a);
        prop_assert_eq!(merged(&Metrics::default(), &a), a);
    }

    #[test]
    fn merging_singletons_equals_sequential_absorb(
        costs in proptest::collection::vec(
            (0u64..1 << 30, 0u64..1 << 30, 0u64..1 << 30, 0u64..1 << 30, 0u64..1 << 30), 0..40
        ),
    ) {
        let costs: Vec<ServeCost> = costs
            .into_iter()
            .map(
                |(routing, rotations, links_changed, rebuild_patches, rebuild_nodes)| ServeCost {
                    routing,
                    rotations,
                    links_changed,
                    rebuild_patches,
                    rebuild_nodes,
                },
            )
            .collect();
        // Sequential accumulation, as the unsharded runner does it.
        let mut sequential = Metrics::default();
        for &c in &costs {
            sequential.absorb(c);
        }
        // Arbitrary re-grouping: left fold, right fold, pairwise tree.
        let left = costs.iter().fold(Metrics::default(), |acc, &c| {
            merged(&acc, &Metrics::from_cost(c))
        });
        let right = costs.iter().rev().fold(Metrics::default(), |acc, &c| {
            merged(&Metrics::from_cost(c), &acc)
        });
        let mut level: Vec<Metrics> = costs.iter().map(|&c| Metrics::from_cost(c)).collect();
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        merged(&pair[0], &pair[1])
                    } else {
                        pair[0]
                    }
                })
                .collect();
        }
        let tree = level.first().copied().unwrap_or_default();
        prop_assert_eq!(left, sequential);
        prop_assert_eq!(right, sequential);
        prop_assert_eq!(tree, sequential);
        prop_assert_eq!(sequential.requests, costs.len() as u64);
    }
}
