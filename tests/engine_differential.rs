//! Differential guarantees of the sharded engine (`kst-engine`):
//!
//! 1. a **1-shard** engine is bit-identical to `run_network` on *every*
//!    network type — move-for-move per-request costs, not just totals;
//! 2. for an intra-shard trace, **S-shard** per-shard partials are
//!    move-for-move identical to standalone nets over each shard's
//!    keyspace, and `Metrics::merge` reduces them to exactly the summed
//!    unsharded totals;
//! 3. the threaded run is bit-identical to the sequential run;
//! 4. cross-shard requests are charged per the documented router model;
//! 5. the demand-aware dispatch layer is a strict superset: with the
//!    star spine and resharding off the refactored engine reproduces the
//!    fixed-router, fixed-partition engine bit for bit (including the
//!    `ObsReport` histograms), and with them on the threaded run still
//!    equals the sequential run;
//! 6. on a boundary-straddling phase-shift workload live resharding
//!    beats the static partition on total cost;
//! 7. a parallel shard build (`EngineConfig::build_threads`) produces an
//!    engine bit-identical to the sequential build on every network type
//!    × shard count.

use ksan::engine::{
    EngineConfig, EngineReport, ObsMode, ReshardConfig, ReshardReport, ShardedEngine, SpineMode,
};
use ksan::prelude::*;
use ksan::sim::experiments::{centroid_rebuilder, run_network};
use ksan::sim::{run_observed, ObsCollector};
use ksan::statics::StaticNet;

// The engine moves shard nets into worker threads; every network type it
// may host must be Send (compile-time part of the Send-safety audit —
// kst-core carries the same assertions for its own types).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ClassicSplayNet>();
    assert_send::<StaticNet>();
};

/// Serves `trace` through a fresh 1-shard engine and a fresh reference
/// net from the same factory, asserting per-request bit-identity, then
/// checks the engine total against `run_network`.
fn assert_one_shard_identical<N: Network + Send>(label: &str, make: impl Fn(usize) -> N + Sync) {
    let n = 96;
    let trace = gens::temporal(n, 3000, 0.6, 17);
    let cfg = EngineConfig::default().with_shards(1).with_threads(1);
    let mut engine = ShardedEngine::new(n, cfg, |_, r| make(r.len()));
    let mut reference = make(n);
    let mut report = EngineReport::new(1);
    for (i, &(u, v)) in trace.requests().iter().enumerate() {
        let want = reference.serve(u, v);
        let got = engine.serve_one(u, v, &mut report);
        assert_eq!(got, want, "{label}: request #{i} ({u},{v}) diverged");
    }
    assert_eq!(report.cross.requests, 0, "{label}: 1 shard cannot cross");
    assert_eq!(report.router_hops, 0, "{label}");
    let totals = run_network(make(n), &trace);
    assert_eq!(report.total(), totals, "{label}: totals diverged");
}

#[test]
fn one_shard_engine_is_bit_identical_on_every_network_type() {
    for k in [2usize, 3, 5] {
        assert_one_shard_identical(&format!("KSplayNet k={k}"), |n| KSplayNet::balanced(k, n));
    }
    assert_one_shard_identical("KSplayNet semi-splay k=4", |n| {
        KSplayNet::balanced(4, n).with_strategy(SplayStrategy::SemiOnly)
    });
    assert_one_shard_identical("ClassicSplayNet", ClassicSplayNet::balanced);
    for k in [2usize, 3] {
        assert_one_shard_identical(&format!("KPlusOneSplayNet k={k}"), |n| {
            KPlusOneSplayNet::new(k, n)
        });
    }
    assert_one_shard_identical("LazyKaryNet (centroid rebuild)", |n| {
        ksan::core::LazyKaryNet::new(3, n, 400, centroid_rebuilder(3))
    });
    assert_one_shard_identical("LazyKaryNet (weight-balanced rebuild)", |n| {
        ksan::core::LazyKaryNet::new(3, n, 400, ksan::core::weight_balanced_rebuilder(3))
    });
    // Incremental plan/apply rebuilds with a decaying ledger ride through
    // the engine unchanged — the sharding layer is policy-agnostic.
    assert_one_shard_identical("LazyKaryNet (incremental, half-life 4)", |n| {
        ksan::core::LazyKaryNet::new(
            3,
            n,
            400,
            ksan::core::incremental_weight_balanced_rebuilder(3, 8),
        )
        .with_half_life(4)
    });
    assert_one_shard_identical("StaticNet (full 3-ary)", |n| {
        StaticNet::new(full_kary(n, 3), "full-3ary")
    });
    // Competing complete-tree topologies ride the same sharding layer.
    for k in [2usize, 4] {
        assert_one_shard_identical(&format!("PushDownNet k={k}"), |n| PushDownNet::new(k, n));
        assert_one_shard_identical(&format!("RotorWalkNet k={k}"), |n| RotorWalkNet::new(k, n));
    }
}

#[test]
fn multi_shard_intra_traffic_matches_standalone_nets_move_for_move() {
    let n = 400;
    let shards = 4;
    let trace = gens::sharded_hot_pairs(n, 12_000, shards, 8, 23);
    let cfg = EngineConfig::default().with_shards(shards).with_threads(1);
    let mut engine = ShardedEngine::ksplay(3, n, cfg);
    let report = engine.run_trace(&trace);
    assert_eq!(report.cross.requests, 0, "workload must stay intra-shard");

    // Standalone nets over each shard's keyspace, serving the shard's
    // zero-copy view of the trace.
    let ranges = partition_keyspace(n, shards);
    let mut merged = Metrics::default();
    for (s, view) in trace.shard_views(&ranges).iter().enumerate() {
        let mut standalone = KSplayNet::balanced(3, view.n());
        let mut m = Metrics::default();
        for (u, v) in view.local_requests() {
            m.absorb(standalone.serve(u, v));
        }
        assert_eq!(
            report.per_shard[s], m,
            "shard {s}: engine partial != standalone net totals"
        );
        merged.merge(&m);
    }
    // Associative merge of the partials reduces to the engine's total —
    // exactly the summed totals the unsharded per-shard nets report.
    assert_eq!(report.total(), merged);
    assert_eq!(merged.requests, 12_000);
}

#[test]
fn threaded_run_is_bit_identical_to_sequential_across_network_types() {
    let n = 300;
    let trace = gens::uniform(n, 9000, 31); // plenty of cross-shard traffic
    for shards in [2usize, 3, 5] {
        let base = EngineConfig::default().with_shards(shards).with_batch(97);
        let mut seq = ShardedEngine::ksplay(2, n, base.clone().with_threads(1));
        let mut par = ShardedEngine::ksplay(2, n, base.clone().with_threads(4));
        assert_eq!(
            seq.run_trace(&trace),
            par.run_trace(&trace),
            "shards={shards}"
        );
        // Also for the centroid net, which carries extra internal state.
        let mut seq_c = ShardedEngine::new(n, base.clone().with_threads(1), |_, r| {
            KPlusOneSplayNet::new(2, r.len())
        });
        let mut par_c = ShardedEngine::new(n, base.with_threads(3), |_, r| {
            KPlusOneSplayNet::new(2, r.len())
        });
        assert_eq!(
            seq_c.run_trace(&trace),
            par_c.run_trace(&trace),
            "centroid shards={shards}"
        );
    }
    // The complete-tree competitors: rotor state makes RotorWalkNet the
    // most history-sensitive net in the workspace, so thread-count must
    // provably not leak into its results.
    for shards in [2usize, 4] {
        let base = EngineConfig::default().with_shards(shards).with_batch(97);
        let mut seq = ShardedEngine::pushdown(3, n, base.clone().with_threads(1));
        let mut par = ShardedEngine::pushdown(3, n, base.clone().with_threads(4));
        assert_eq!(
            seq.run_trace(&trace),
            par.run_trace(&trace),
            "pushdown shards={shards}"
        );
        let mut seq_r = ShardedEngine::rotor(3, n, base.clone().with_threads(1));
        let mut par_r = ShardedEngine::rotor(3, n, base.with_threads(4));
        assert_eq!(
            seq_r.run_trace(&trace),
            par_r.run_trace(&trace),
            "rotor shards={shards}"
        );
    }
}

#[test]
fn competitor_replay_is_bit_identical_across_runs_and_thread_counts() {
    // Determinism replay: regenerating the same seeded trace and serving
    // it through fresh nets — standalone and through a 4-shard threaded
    // engine — must reproduce bit-identical metrics both times.
    let n = 220;
    let run_standalone = |rotor: bool| -> Metrics {
        let trace = gens::zipf(n, 6000, 1.2, 41);
        let mut m = Metrics::default();
        if rotor {
            let mut net = RotorWalkNet::new(3, n);
            for &(u, v) in trace.requests() {
                m.absorb(net.serve(u, v));
            }
        } else {
            let mut net = PushDownNet::new(3, n);
            for &(u, v) in trace.requests() {
                m.absorb(net.serve(u, v));
            }
        }
        m
    };
    let run_engine = |rotor: bool, threads: usize| -> EngineReport {
        let trace = gens::zipf(n, 6000, 1.2, 41);
        let cfg = EngineConfig::default().with_shards(4).with_threads(threads);
        if rotor {
            ShardedEngine::rotor(3, n, cfg).run_trace(&trace)
        } else {
            ShardedEngine::pushdown(3, n, cfg).run_trace(&trace)
        }
    };
    for rotor in [false, true] {
        let label = if rotor { "rotor" } else { "pushdown" };
        let first = run_standalone(rotor);
        let second = run_standalone(rotor);
        assert_eq!(first, second, "{label}: standalone replay diverged");
        assert!(first.requests == 6000 && first.routing > 0, "{label}");
        let seq = run_engine(rotor, 1);
        let replay = run_engine(rotor, 1);
        assert_eq!(seq, replay, "{label}: engine replay diverged");
        let threaded = run_engine(rotor, 4);
        assert_eq!(seq, threaded, "{label}: thread count leaked into metrics");
    }
}

#[test]
fn cross_shard_accounting_follows_the_router_model() {
    let n = 120;
    let shards = 3;
    let trace = gens::uniform(n, 5000, 7);
    let cfg = EngineConfig::default().with_shards(shards).with_threads(2);
    let mut engine = ShardedEngine::ksplay(2, n, cfg);
    let report = engine.run_trace(&trace);

    let total = report.total();
    assert_eq!(total.requests, 5000);
    // Every request is counted exactly once: intra partials + whole
    // cross requests.
    let intra: u64 = report.per_shard.iter().map(|m| m.requests).sum();
    assert_eq!(intra + report.cross.requests, 5000);
    // The router charges exactly router_hops per cross request, folded
    // into cross.routing on top of the gateway half-serves.
    assert_eq!(report.router_hops, 2 * report.cross.requests);
    assert!(report.cross.routing >= report.router_hops);
    assert!(
        report.cross_fraction() > 0.3,
        "uniform traffic over 3 shards"
    );

    // Expected cross count is a pure function of the partition.
    let map = engine.map().clone();
    let expected_cross = trace
        .requests()
        .iter()
        .filter(|&&(u, v)| map.shard_of(u) != map.shard_of(v))
        .count() as u64;
    assert_eq!(report.cross.requests, expected_cross);
}

#[test]
fn observed_cost_histograms_are_bit_identical_across_configs() {
    // The per-shard cost histograms are built from each shard's FIFO op
    // stream, which the dispatcher fixes regardless of worker or batch
    // configuration — so the deterministic observability surfaces must
    // be bit-identical across every config, exactly like the metrics.
    let n = 300;
    let trace = gens::uniform(n, 9000, 31); // plenty of cross-shard traffic
    let obs_cfg = |threads: usize, batch: usize| {
        EngineConfig::default()
            .with_shards(4)
            .with_threads(threads)
            .with_batch(batch)
            .with_obs(ObsMode::Deterministic)
            .with_obs_events(256)
    };
    let reference = ShardedEngine::ksplay(3, n, obs_cfg(1, 1024)).run_trace(&trace);
    let cost = reference.obs.cost_total();
    assert!(reference.obs.requests() > 0);
    assert!(cost.rotations.count() > 0, "splaying must rotate");
    assert!(cost.routing.p999() >= cost.routing.p99());
    assert!(cost.routing.p99() >= cost.routing.p50());
    for (threads, batch) in [(2usize, 1usize), (4, 97), (3, 100_000)] {
        let got = ShardedEngine::ksplay(3, n, obs_cfg(threads, batch)).run_trace(&trace);
        // Whole-report equality covers metrics AND the deterministic
        // observability surfaces (ObsReport's PartialEq).
        assert_eq!(got, reference, "threads={threads} batch={batch}");
        assert_eq!(
            got.obs.cost_total(),
            cost,
            "merged histograms diverged (threads={threads} batch={batch})"
        );
    }

    // Wall-clock mode: pause/timestamp surfaces differ run to run, but
    // the deterministic histograms must stay bit-identical — to each
    // other and to the deterministic-mode run.
    let wall = |threads: usize| {
        let cfg = obs_cfg(threads, 97).with_obs(ObsMode::WallClock);
        ShardedEngine::ksplay(3, n, cfg).run_trace(&trace)
    };
    let (a, b) = (wall(1), wall(4));
    assert_eq!(a.obs, b.obs, "wall-clock noise leaked into obs equality");
    assert_eq!(a.obs.cost_total(), cost);
    assert_eq!(b.obs.cost_total(), cost);
}

#[test]
fn one_shard_observed_engine_matches_run_observed() {
    // A 1-shard deterministic-mode engine must build the same cost and
    // rebuild histograms as kst_sim::run_observed over a standalone net.
    let n = 96;
    let trace = gens::temporal(n, 3000, 0.6, 17);
    let cfg = EngineConfig::default()
        .with_shards(1)
        .with_threads(1)
        .with_obs(ObsMode::Deterministic)
        .with_obs_events(128);
    let mut engine = ShardedEngine::ksplay(3, n, cfg);
    let report = engine.run_trace(&trace);

    let mut net = KSplayNet::balanced(3, n);
    let mut obs = ObsCollector::new(0, 128);
    let m = run_observed(&mut net, &trace, &mut obs);
    assert_eq!(report.per_shard[0], m);
    assert_eq!(report.obs.per_shard[0].col.cost, obs.cost);
    assert_eq!(report.obs.per_shard[0].col.rebuild_nodes, obs.rebuild_nodes);
    assert_eq!(
        report.obs.per_shard[0].col.rebuild_patches,
        obs.rebuild_patches
    );
    assert_eq!(report.obs.cost_total(), obs.cost);
}

#[test]
fn lazy_engine_rebuild_histograms_survive_threading() {
    // The lazy config is the one whose rebuild distributions the
    // observability layer exists to expose; its epoch state makes it the
    // most order-sensitive net here, so thread count must provably not
    // leak into the rebuild histograms.
    let n = 400;
    let trace = gens::temporal(n, 12_000, 0.8, 23);
    let lazy = |threads: usize| {
        let cfg = EngineConfig::default()
            .with_shards(4)
            .with_threads(threads)
            .with_batch(64)
            .with_obs(ObsMode::Deterministic)
            .with_obs_events(64);
        ShardedEngine::lazy(4, n, 600, 150, 8, cfg).run_trace(&trace)
    };
    let seq = lazy(1);
    let par = lazy(4);
    assert_eq!(seq, par);
    assert!(
        seq.obs.rebuild_patches_total().count() > 0,
        "workload must trigger patching rebuilds"
    );
    assert_eq!(seq.obs.rebuild_nodes_total(), par.obs.rebuild_nodes_total());
    assert_eq!(
        seq.obs.rebuild_patches_total(),
        par.obs.rebuild_patches_total()
    );
    // Deterministic mode never touches a clock: no pause samples.
    assert!(seq.obs.rebuild_pause_total().is_empty());
}

#[test]
fn star_spine_with_resharding_off_is_bit_identical_to_the_default_engine() {
    // The refactor gate: the demand-aware dispatch layer must be a
    // strict superset of the fixed-router, fixed-partition engine. With
    // an *explicit* star spine and resharding off (the defaults), every
    // network type must produce reports — including the deterministic
    // ObsReport histograms — bit-identical to the plain config, across
    // shard/thread/batch combinations.
    let n = 240;
    let trace = gens::uniform(n, 6000, 11);
    let legacy = SpineMode::Star;
    let off = ReshardConfig {
        enabled: false,
        ..ReshardConfig::on()
    };
    for (shards, threads, batch) in [(2usize, 1usize, 1024usize), (5, 3, 64), (8, 4, 1)] {
        let base = EngineConfig::default()
            .with_shards(shards)
            .with_threads(threads)
            .with_batch(batch)
            .with_obs(ObsMode::Deterministic)
            .with_obs_events(128);
        let gated = base.clone().with_spine(legacy).with_reshard(off);
        let label = format!("shards={shards} threads={threads} batch={batch}");
        let a = ShardedEngine::ksplay(2, n, base.clone()).run_trace(&trace);
        let b = ShardedEngine::ksplay(2, n, gated.clone()).run_trace(&trace);
        assert_eq!(a, b, "ksplay {label}");
        assert_eq!(a.reshard, ReshardReport::default(), "ksplay {label}");
        assert_eq!(a.router_hops, 2 * a.cross.requests, "ksplay {label}");

        let a = ShardedEngine::pushdown(3, n, base.clone()).run_trace(&trace);
        let b = ShardedEngine::pushdown(3, n, gated.clone()).run_trace(&trace);
        assert_eq!(a, b, "pushdown {label}");

        let a = ShardedEngine::rotor(3, n, base.clone()).run_trace(&trace);
        let b = ShardedEngine::rotor(3, n, gated.clone()).run_trace(&trace);
        assert_eq!(a, b, "rotor {label}");

        let a = ShardedEngine::lazy(3, n, 400, 100, 4, base).run_trace(&trace);
        let b = ShardedEngine::lazy(3, n, 400, 100, 4, gated).run_trace(&trace);
        assert_eq!(a, b, "lazy {label}");
    }
    // The epoch-chunked replay path itself (resharding armed, but a gain
    // bar no migration can clear) charges exactly the same costs as the
    // unchunked path.
    let never = ReshardConfig {
        enabled: true,
        epoch: 700,
        min_gain: u64::MAX,
        ..ReshardConfig::default()
    };
    for threads in [1usize, 3] {
        let base = EngineConfig::default().with_shards(4).with_threads(threads);
        let plain = ShardedEngine::ksplay(2, n, base.clone()).run_trace(&trace);
        let armed = ShardedEngine::ksplay(2, n, base.with_reshard(never)).run_trace(&trace);
        assert_eq!(plain, armed, "threads={threads}: chunked replay diverged");
        assert_eq!(armed.reshard, ReshardReport::default());
    }
}

#[test]
fn spine_and_resharding_runs_are_bit_identical_across_thread_counts() {
    // The new demand-aware machinery must preserve guarantee 3: the
    // spine is served on the dispatcher in trace order and migrations
    // are planned between epochs from a thread-count-independent ledger,
    // so thread/batch layout cannot leak into the report.
    let n = 240;
    let trace = gens::boundary_phase_shift(n, 8000, 4, 2000, 0.8, 19);
    let mut rc = ReshardConfig::on();
    rc.epoch = 500;
    rc.budget = 16;
    let cfg = |threads: usize, batch: usize| {
        EngineConfig::default()
            .with_shards(4)
            .with_threads(threads)
            .with_batch(batch)
            .with_spine(SpineMode::KSplay { k: 2 })
            .with_reshard(rc)
            .with_obs(ObsMode::Deterministic)
            .with_obs_events(128)
    };
    let reference = ShardedEngine::ksplay(2, n, cfg(1, 1024)).run_trace(&trace);
    assert!(
        reference.reshard.migrations > 0,
        "the workload must actually trigger migrations"
    );
    for (threads, batch) in [(2usize, 1usize), (4, 97), (3, 100_000)] {
        let got = ShardedEngine::ksplay(2, n, cfg(threads, batch)).run_trace(&trace);
        assert_eq!(got, reference, "threads={threads} batch={batch}");
        assert_eq!(got.reshard, reference.reshard, "threads={threads}");
    }
}

#[test]
fn resharding_beats_the_static_partition_on_boundary_traffic() {
    // Guarantee 6 (and the regime results/resharding.md reports): hot
    // pairs straddling shard boundaries are cross-shard forever under a
    // static partition but become cheap intra-shard traffic once live
    // resharding shifts the boundary.
    let n = 400;
    let shards = 4;
    let trace = gens::boundary_phase_shift(n, 30_000, shards, 7500, 0.9, 5);
    let base = EngineConfig::default().with_shards(shards).with_threads(1);
    let mut rc = ReshardConfig::on();
    rc.epoch = 1000;
    rc.budget = 32;
    let static_rep = ShardedEngine::ksplay(2, n, base.clone()).run_trace(&trace);
    let dynamic_rep = ShardedEngine::ksplay(2, n, base.with_reshard(rc)).run_trace(&trace);
    assert!(dynamic_rep.reshard.migrations > 0);
    let static_cost = static_rep.total().total_unit_cost();
    let dynamic_cost = dynamic_rep.total().total_unit_cost();
    assert!(
        dynamic_cost * 10 <= static_cost * 9,
        "live resharding should win >=10% on boundary traffic \
         (static {static_cost}, resharding {dynamic_cost})"
    );
    assert!(
        dynamic_rep.cross.requests < static_rep.cross.requests,
        "migrations should convert cross-shard traffic to intra-shard"
    );
}

#[test]
fn engine_handles_lopsided_thread_and_batch_configs() {
    let n = 64;
    let trace = gens::temporal(n, 4000, 0.5, 3);
    let reference = {
        let mut e =
            ShardedEngine::ksplay(2, n, EngineConfig::default().with_shards(8).with_threads(1));
        e.run_trace(&trace)
    };
    for (threads, batch) in [(2usize, 1usize), (16, 1), (3, 7), (8, 100_000)] {
        let cfg = EngineConfig::default()
            .with_shards(8)
            .with_threads(threads)
            .with_batch(batch);
        let mut e = ShardedEngine::ksplay(2, n, cfg);
        assert_eq!(
            e.run_trace(&trace),
            reference,
            "threads={threads} batch={batch}"
        );
    }
}

/// Runs the same trace through a sequentially built and a parallel-built
/// engine (same factory, same config otherwise) and asserts the reports —
/// deterministic obs histograms included — are bit-identical. Shards are
/// independent, so `build_threads` must be invisible in every observable.
fn assert_parallel_build_identical<N: Network + Send>(
    label: &str,
    shards: usize,
    make: impl Fn(usize) -> N + Sync,
) {
    let n = 180;
    let trace = gens::uniform(n, 4000, 23);
    let cfg = EngineConfig::default()
        .with_shards(shards)
        .with_threads(1)
        .with_obs(ObsMode::Deterministic);
    let mut seq = ShardedEngine::new(n, cfg.clone().with_build_threads(1), |_, r| make(r.len()));
    let mut par = ShardedEngine::new(n, cfg.with_build_threads(4), |_, r| make(r.len()));
    assert_eq!(
        seq.run_trace(&trace),
        par.run_trace(&trace),
        "{label}: parallel build diverged at {shards} shards"
    );
}

#[test]
fn parallel_build_is_bit_identical_to_sequential_on_every_network_type() {
    for shards in [1usize, 3, 5, 16] {
        assert_parallel_build_identical("KSplayNet k=3", shards, |n| KSplayNet::balanced(3, n));
        assert_parallel_build_identical("KPlusOneSplayNet k=2", shards, |n| {
            KPlusOneSplayNet::new(2, n)
        });
        assert_parallel_build_identical("PushDownNet k=2", shards, |n| PushDownNet::new(2, n));
        assert_parallel_build_identical("RotorWalkNet k=2", shards, |n| RotorWalkNet::new(2, n));
        assert_parallel_build_identical("LazyKaryNet k=2", shards, |n| {
            ksan::core::LazyKaryNet::new(
                2,
                n,
                4,
                ksan::core::incremental_weight_balanced_rebuilder(2, 10),
            )
        });
        assert_parallel_build_identical("ClassicSplayNet", shards, ClassicSplayNet::balanced);
    }
}
