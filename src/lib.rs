//! # ksan — self-adjusting k-ary search tree networks
//!
//! Facade crate re-exporting the whole workspace: a production-quality
//! Rust reproduction of *Toward Self-Adjusting k-ary Search Tree Networks*
//! (Feder, Paramonov, Mavrin, Salem, Aksenov, Schmid; 2024,
//! arXiv:2302.13113).
//!
//! * [`core`] (`kst-core`) — the k-ary search tree network, k-splay
//!   rotations, the online k-ary SplayNet and centroid (k+1)-SplayNet,
//!   greedy local routing;
//! * [`statics`] (`kst-statics`) — offline optimal static trees (O(n³k)
//!   DP, O(n²k) uniform DP, O(n) centroid construction, full trees);
//! * [`workloads`] (`kst-workloads`) — traces, demand matrices, workload
//!   generators and locality statistics;
//! * [`sim`] (`kst-sim`) — the cost-model simulator and experiment
//!   harness;
//! * [`engine`] (`kst-engine`) — the sharded, multi-threaded
//!   trace-serving engine (contiguous keyspace shards, per-shard queues,
//!   batched dispatch, explicit cross-shard router cost model);
//! * [`obs`] (`kst-obs`) — deterministic observability: log-bucketed
//!   mergeable cost histograms, a ring-buffer span tracer, the audited
//!   wall-clock surface, and JSON/chrome-trace exporters;
//! * [`classic`] (`splaynet-classic`) — the original binary SplayNet
//!   baseline.
//!
//! ## Quick start
//!
//! ```
//! use ksan::prelude::*;
//!
//! // A 4-ary self-adjusting search tree network on 200 nodes.
//! let mut net = KSplayNet::balanced(4, 200);
//! let trace = gens::temporal(200, 10_000, 0.75, 42);
//! let metrics = ksan::sim::run(&mut net, &trace);
//! assert!(metrics.routing > 0);
//! ```

#![forbid(unsafe_code)]

pub use kst_core as core;
pub use kst_engine as engine;
pub use kst_obs as obs;
pub use kst_sim as sim;
pub use kst_statics as statics;
pub use kst_workloads as workloads;
pub use splaynet_classic as classic;

/// Commonly used items in one import.
pub mod prelude {
    pub use kst_core::{
        KPlusOneSplayNet, KSplayNet, KstTree, Network, NodeKey, PushDownNet, RotorWalkNet,
        ServeCost, ShapeTree, SplayStrategy, WindowPolicy,
    };
    pub use kst_engine::{
        EngineConfig, EngineReport, ReshardConfig, ReshardReport, ShardMap, ShardedEngine,
        SpineMode,
    };
    pub use kst_obs::{CostHistograms, Histogram, Stopwatch, Tracer};
    pub use kst_sim::{Metrics, RegretReport, Scale};
    pub use kst_statics::{
        centroid_tree, full_kary, optimal_routing_based_tree, static_reference, DistTree,
    };
    pub use kst_workloads::gens;
    pub use kst_workloads::{
        partition_keyspace, DecayingDemand, DemandMatrix, DemandView, DirtyIndex, KeyRange,
        SparseDemand, Trace,
    };
    pub use splaynet_classic::ClassicSplayNet;
}
