//! Local greedy routing despite reconfiguration: route packets with only
//! per-node local state while the topology keeps splaying underneath —
//! the property that motivates search-tree networks (Section 2).
//!
//! ```sh
//! cargo run --release --example local_routing
//! ```

// Demo/report output is this target's purpose; the workspace denies stdout printing in library code only.
#![allow(clippy::print_stdout)]

use ksan::core::routing;
use ksan::prelude::*;

fn main() {
    let n = 256;
    let mut net = KSplayNet::balanced(4, n);

    // Scramble the topology with traffic.
    let trace = gens::zipf(n, 20_000, 1.2, 5);
    ksan::sim::run(&mut net, &trace);

    // Route packets greedily; compare with tree distance.
    let mut greedy_total = 0u64;
    let mut dist_total = 0u64;
    let mut detoured = 0usize;
    let probes = 2_000;
    let probe = gens::uniform(n, probes, 17);
    for &(u, v) in probe.requests() {
        let route = routing::route(net.tree(), u, v).expect("greedy routing must deliver");
        let d = net.distance(u, v);
        greedy_total += route.len();
        dist_total += d;
        if route.len() > d {
            detoured += 1;
        }
    }
    println!(
        "{} probes over a heavily-splayed 4-ary tree (n={}):\n\
         greedy route length total = {}, tree distance total = {}\n\
         overhead = {:.2}%, detoured packets = {} ({:.1}%)",
        probes,
        n,
        greedy_total,
        dist_total,
        100.0 * (greedy_total as f64 / dist_total as f64 - 1.0),
        detoured,
        100.0 * detoured as f64 / probes as f64,
    );
    println!(
        "\nEvery packet was delivered using only local node state (routing\n\
         array + interval bounds + incoming port) — no routing tables were\n\
         updated during {} reconfigurations.",
        20_000
    );

    // The classic routing-based SplayNet never detours: its routing
    // elements are the keys themselves.
    println!(
        "\nFor contrast, a routing-based tree (classic BST layout) routes\n\
         every packet along the exact shortest path; the k-ary generalization\n\
         trades that for higher arity and the k-splay rotations (Remark 11)."
    );
}
