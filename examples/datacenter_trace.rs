//! Datacenter scenario: compare self-adjusting and static topologies on a
//! simulated Facebook-style rack-to-rack trace (the Section 5 evaluation
//! in miniature).
//!
//! ```sh
//! cargo run --release --example datacenter_trace
//! ```

// Demo/report output is this target's purpose; the workspace denies stdout printing in library code only.
#![allow(clippy::print_stdout)]

use ksan::prelude::*;
use ksan::sim::table::Table;
use ksan::workloads::stats;

fn main() {
    let n = 1024; // racks
    let m = 200_000; // requests
    let trace = gens::facebook(n, m, 2024);
    let st = stats::stats(&trace);
    println!(
        "simulated Facebook trace: n={} m={} repeat-rate={:.3} src-entropy={:.2} bits ({} distinct pairs)\n",
        st.n, st.m, st.repeat_rate, st.src_entropy, st.distinct_pairs
    );

    let mut tab = Table::new(&["network", "avg routing", "avg rotations", "avg unit cost"]);
    let mf = m as f64;

    // Online self-adjusting networks.
    let mut k3 = KSplayNet::balanced(3, n);
    let m3 = ksan::sim::run(&mut k3, &trace);
    let mut k8 = KSplayNet::balanced(8, n);
    let m8 = ksan::sim::run(&mut k8, &trace);
    let mut centroid3 = KPlusOneSplayNet::new(2, n);
    let mc = ksan::sim::run(&mut centroid3, &trace);
    let mut classic = ClassicSplayNet::balanced(n);
    let ms = ksan::sim::run(&mut classic, &trace);

    for (name, met) in [
        ("SplayNet (binary)", ms),
        ("3-ary SplayNet", m3),
        ("8-ary SplayNet", m8),
        ("3-SplayNet (centroid)", mc),
    ] {
        tab.row(vec![
            name.into(),
            format!("{:.3}", met.avg_routing()),
            format!("{:.3}", met.avg_rotations()),
            format!("{:.3}", met.total_unit_cost() as f64 / mf),
        ]);
    }

    // Static baselines (no rotations).
    for (name, tree) in [
        ("full binary tree (static)", full_kary(n, 2)),
        ("full 8-ary tree (static)", full_kary(n, 8)),
        ("centroid 3-ary tree (static)", centroid_tree(n, 3)),
    ] {
        let c = tree.cost_on_trace(&trace);
        tab.row(vec![
            name.into(),
            format!("{:.3}", c as f64 / mf),
            "0.000".into(),
            format!("{:.3}", c as f64 / mf),
        ]);
    }

    // The demand-aware optimal static tree (exact DP is fine at n=1024).
    let demand = DemandMatrix::from_trace(&trace);
    let (opt, _) = optimal_routing_based_tree(&demand, 3);
    let c = opt.cost_on_trace(&trace);
    tab.row(vec![
        "optimal static 3-ary tree (DP)".into(),
        format!("{:.3}", c as f64 / mf),
        "0.000".into(),
        format!("{:.3}", c as f64 / mf),
    ]);

    println!("{}", tab.to_markdown());
    println!(
        "\nReading guide: higher arity shortens routes; the demand-aware DP tree\n\
         exploits the skewed traffic; self-adjusting networks additionally pay\n\
         rotations but keep adapting if the pattern drifts."
    );
}
