//! Locality sweep: where does self-adjustment beat static topologies, and
//! where does the centroid heuristic beat plain SplayNet? Reproduces the
//! qualitative story of Tables 4–8 as one sweep over the temporal
//! complexity parameter p.
//!
//! ```sh
//! cargo run --release --example locality_sweep
//! ```

// Demo/report output is this target's purpose; the workspace denies stdout printing in library code only.
#![allow(clippy::print_stdout)]

use ksan::prelude::*;
use ksan::sim::table::Table;

fn main() {
    let n = 512;
    let m = 100_000;
    let mut tab = Table::new(&[
        "p",
        "SplayNet",
        "3-SplayNet",
        "4-ary SplayNet",
        "full binary",
        "winner",
    ]);
    for p in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95] {
        let trace = gens::temporal(n, m, p, 99);
        let mf = m as f64;

        let mut classic = ClassicSplayNet::balanced(n);
        let cs = ksan::sim::run(&mut classic, &trace).total_unit_cost() as f64 / mf;

        let mut centroid = KPlusOneSplayNet::new(2, n);
        let cc = ksan::sim::run(&mut centroid, &trace).total_unit_cost() as f64 / mf;

        let mut kary = KSplayNet::balanced(4, n);
        let ck = ksan::sim::run(&mut kary, &trace).total_unit_cost() as f64 / mf;

        let cf = full_kary(n, 2).cost_on_trace(&trace) as f64 / mf;

        let entries = [
            ("SplayNet", cs),
            ("3-SplayNet", cc),
            ("4-ary SplayNet", ck),
            ("full binary", cf),
        ];
        let winner = entries
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        tab.row(vec![
            format!("{p:.2}"),
            format!("{cs:.2}"),
            format!("{cc:.2}"),
            format!("{ck:.2}"),
            format!("{cf:.2}"),
            winner.to_string(),
        ]);
    }
    println!("average unit cost per request (routing + rotations), n={n}, m={m}:\n");
    println!("{}", tab.to_markdown());
    println!(
        "\nExpected story (Sections 5.1–5.2): static trees win at p≈0 (no\n\
         locality to exploit), the centroid 3-SplayNet wins at low/medium\n\
         locality, and splaying wins as p→1; higher arity helps throughout."
    );
}
