//! Quickstart: build a k-ary SplayNet, serve a few requests, inspect costs
//! and watch the topology adapt.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// Demo/report output is this target's purpose; the workspace denies stdout printing in library code only.
#![allow(clippy::print_stdout)]

use ksan::core::viz;
use ksan::prelude::*;

fn main() {
    // A 3-ary self-adjusting search tree network over 13 racks.
    let mut net = KSplayNet::balanced(3, 13);
    println!("initial topology ({}):", viz::summary(net.tree()));
    println!("{}", viz::render(net.tree()));

    // Rack 2 talks to rack 13 repeatedly — the network adapts after the
    // first request, and every later request costs a single hop.
    for round in 1..=3 {
        let cost = net.serve(2, 13);
        println!(
            "request (2,13) #{round}: routing={} rotations={} links-changed={}",
            cost.routing, cost.rotations, cost.links_changed
        );
    }
    println!("\nafter serving (2,13): distance = {}", net.distance(2, 13));
    println!("{}", viz::render(net.tree()));

    // A burst of locality-heavy traffic: self-adjustment pays off.
    let trace = gens::temporal(13, 5_000, 0.8, 7);
    let metrics = ksan::sim::run(&mut net, &trace);
    println!(
        "temporal-0.8 trace: {} requests, avg routing {:.2} hops, avg rotations {:.2}",
        metrics.requests,
        metrics.avg_routing(),
        metrics.avg_rotations()
    );

    // Compare with a static full 3-ary tree serving the same trace.
    let static_cost = full_kary(13, 3).cost_on_trace(&trace);
    println!(
        "static full 3-ary tree on the same trace: avg routing {:.2} hops",
        static_cost as f64 / trace.len() as f64
    );
}
