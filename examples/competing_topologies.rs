//! Competing self-adjusting topologies head to head: the k-ary SplayNet
//! against Push-Down Trees and rotor-walk trees (PAPERS.md), with regret
//! against the offline static optimum.
//!
//! ```sh
//! cargo run --release --example competing_topologies
//! ```

// Demo/report output is this target's purpose; the workspace denies stdout printing in library code only.
#![allow(clippy::print_stdout)]

use ksan::prelude::*;
use ksan::sim::regret::regret_eval_against;

fn main() {
    let (n, k) = (200, 3);
    let trace = gens::zipf(n, 40_000, 1.2, 7);

    // The offline reference: the best static k-ary tree for this trace,
    // chosen with full hindsight (exact DP — n is small enough).
    let demand = DemandMatrix::from_trace(&trace);
    let reference = static_reference(&demand, k, 1100);
    println!(
        "zipf(α=1.2) trace, n={n}, {} requests — reference: {}\n",
        trace.len(),
        reference.label
    );

    // Each self-adjusting net serves the same trace in 4k-request windows.
    let window = 4_000;
    let mut reports = Vec::new();
    let mut splay = KSplayNet::balanced(k, n);
    reports.push(regret_eval_against(&mut splay, &trace, &reference, window));
    let mut pushdown = PushDownNet::new(k, n);
    reports.push(regret_eval_against(
        &mut pushdown,
        &trace,
        &reference,
        window,
    ));
    let mut rotor = RotorWalkNet::new(k, n);
    reports.push(regret_eval_against(&mut rotor, &trace, &reference, window));

    println!(
        "{:<24} {:>10} {:>12} {:>12}",
        "network", "cumulative", "first window", "last window"
    );
    for r in &reports {
        let last = r.windows.len() - 1;
        println!(
            "{:<24} {:>10.3} {:>12.3} {:>12.3}",
            r.net,
            r.cumulative_ratio(),
            r.window_ratio(0),
            r.window_ratio(last)
        );
    }
    println!(
        "\nCells are online unit cost (routing + rotations) divided by the \
         static optimum's routing\ncost on the same requests. Ratios falling \
         across windows = the net is converging on\nthe stationary zipf \
         demand; x1.000 would be clairvoyant."
    );
}
