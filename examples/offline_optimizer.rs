//! Offline optimization walkthrough: given a measured demand matrix,
//! build the optimal static routing-based k-ary tree (Theorem 2's O(n³k)
//! DP) and compare it with the oblivious baselines — the workflow a
//! datacenter operator would run between reconfiguration windows.
//!
//! ```sh
//! cargo run --release --example offline_optimizer
//! ```

// Demo/report output is this target's purpose; the workspace denies stdout printing in library code only.
#![allow(clippy::print_stdout)]

use ksan::prelude::*;
use ksan::sim::table::Table;
use ksan::statics::optimal_uniform_tree;

fn main() {
    let n = 200;
    // A skewed demand: sparse partners with Zipf weights (ProjecToR-like).
    let trace = gens::projector(n, 100_000, 11);
    let demand = DemandMatrix::from_trace(&trace);

    println!(
        "optimizing a static topology for n={n}, {} requests\n",
        trace.len()
    );
    let mut tab = Table::new(&[
        "k",
        "optimal (DP)",
        "centroid",
        "full tree",
        "DP gain vs full",
    ]);
    for k in [2usize, 3, 4, 6, 8] {
        let t0 = std::time::Instant::now();
        let (opt, _) = optimal_routing_based_tree(&demand, k);
        let dp_time = t0.elapsed();
        let opt_cost = opt.cost_on_trace(&trace);
        let cen_cost = centroid_tree(n, k).cost_on_trace(&trace);
        let full_cost = full_kary(n, k).cost_on_trace(&trace);
        tab.row(vec![
            k.to_string(),
            format!("{opt_cost} ({dp_time:.0?})"),
            cen_cost.to_string(),
            full_cost.to_string(),
            format!("{:.1}%", 100.0 * (1.0 - opt_cost as f64 / full_cost as f64)),
        ]);
    }
    println!("{}", tab.to_markdown());

    // The uniform-workload special case runs a whole complexity class
    // faster (Theorem 4: O(n²k) instead of O(n³k)).
    println!("\nuniform-workload optimum (O(n²k) DP) vs the O(n) centroid construction:");
    for k in [2usize, 3, 5] {
        let (_, opt) = optimal_uniform_tree(n, k);
        let cen = centroid_tree(n, k).total_distance_uniform();
        println!(
            "  k={k}: optimal={opt} centroid={cen} — centroid is {}",
            if cen == opt {
                "OPTIMAL (Remark 10)"
            } else {
                "off by a margin"
            }
        );
    }
}
